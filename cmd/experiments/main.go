// Command experiments regenerates the tables and figures of the paper's
// evaluation section on the synthetic dataset stand-ins.
//
// Usage:
//
//	experiments [-scale 1.0] [-workers N] [-seed S] [-only table1,fig4a,...]
//	experiments -list
//
// Experiments: table1, fig4a, fig4b, fig5, fig6, fig7, fig8, fig9,
// traversal, batching, reduction (default: all, in order). See EXPERIMENTS.md
// for the recorded paper-vs-measured comparison. The reduction experiment
// times the parallel preprocessing pipeline; -json additionally writes its
// rows as a machine-readable report (used by `make bench-reduction`). The
// traversal experiment runs the relabel-ordering × traversal-engine locality
// matrix; -traversal-json writes it as BENCH_traversal.json (used by
// `make bench-traversal`). The batching experiment runs the batching-mode ×
// estimator-engine matrix; -batching-json writes it as BENCH_batching.json
// (used by `make bench-batching`). The frontier experiment runs the
// exact-farness engine × worker-count scaling study; -frontier-json writes it
// as BENCH_frontier.json (used by `make bench-frontier`). The sketch
// experiment measures point-to-point distance throughput of the three
// /v1/distance answering modes (exact vs sketch vs auto); -sketch-json writes
// it as BENCH_sketch.json (used by `make bench-sketch`). The bicc experiment
// runs the biconnected-decomposition engine × worker-count scaling study on
// each class's reduced graph; -bicc-json writes it as BENCH_bicc.json (used
// by `make bench-bicc`). The load experiment measures time-to-first-query of
// the three graph load paths (text parse vs buffered binary read vs mmap
// zero-copy); -load-json writes it as BENCH_load.json (used by
// `make bench-load`).
// -cpuprofile/-memprofile capture pprof profiles of
// whatever subset runs — the intended workflow for chasing kernel
// regressions spotted in the matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/gen"
)

func main() {
	var (
		scale      = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default stand-in sizes)")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "sampling seed")
		only       = flag.String("only", "", "comma-separated subset: table1,fig4a,fig4b,fig5,fig6,fig7,fig8,fig9,traversal,batching,frontier,sketch,bicc,load,reduction,ablations,sweep")
		jsonOut    = flag.String("json", "", "write the reduction benchmark rows to this JSON file")
		travOut    = flag.String("traversal-json", "", "write the traversal locality matrix to this JSON file")
		batchOut   = flag.String("batching-json", "", "write the source-batching matrix to this JSON file")
		frontOut   = flag.String("frontier-json", "", "write the frontier scaling study to this JSON file")
		sketchOut  = flag.String("sketch-json", "", "write the distance-sketch query study to this JSON file")
		biccOut    = flag.String("bicc-json", "", "write the BiCC decomposition scaling study to this JSON file")
		loadOut    = flag.String("load-json", "", "write the artifact load-path study to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		charts     = flag.Bool("charts", false, "render text bar charts in addition to the tables")
		list       = flag.Bool("list", false, "list datasets and exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			check(err)
			runtime.GC() // materialise final live-set statistics
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	if *list {
		fmt.Printf("%-28s %-10s %10s %10s %10s\n", "Name", "Class", "paper |V|", "paper |E|", "sim |V|")
		for _, ds := range gen.Datasets(*scale) {
			fmt.Printf("%-28s %-10s %10d %10d %10d\n", ds.Name, ds.Class, ds.PaperNodes, ds.PaperEdges, ds.Nodes)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Workers: *workers, Seed: *seed}
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(s))] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }
	start := time.Now()

	if run("table1") {
		rows, err := experiments.TableI(cfg)
		check(err)
		fmt.Println("Table I: dataset characteristics (synthetic stand-ins; see DESIGN.md)")
		experiments.FprintTableI(os.Stdout, rows)
		fmt.Println()
	}
	if run("fig4a") {
		rows, err := experiments.Fig4(cfg, 0.4, 0.4)
		check(err)
		experiments.FprintCompare(os.Stdout, "Fig 4(a): Cumulative vs Random sampling, both at 40% sampling", rows)
		if *charts {
			experiments.FprintCompareChart(os.Stdout, "Fig 4(a)", rows)
		}
		fmt.Println()
	}
	if run("fig4b") {
		rows, err := experiments.Fig4(cfg, 0.2, 0.3)
		check(err)
		experiments.FprintCompare(os.Stdout, "Fig 4(b): Cumulative at 20% vs Random sampling at 30%", rows)
		if *charts {
			experiments.FprintCompareChart(os.Stdout, "Fig 4(b)", rows)
		}
		fmt.Println()
	}
	if run("fig5") {
		res, err := experiments.Fig5(cfg, 0.3)
		check(err)
		experiments.FprintFig5(os.Stdout, res)
		if *charts {
			experiments.FprintFig5Histograms(os.Stdout, res)
		}
		fmt.Println()
	}
	for _, c := range []struct {
		key   string
		class gen.Class
	}{
		{"fig6", gen.ClassWeb},
		{"fig7", gen.ClassSocial},
		{"fig8", gen.ClassCommunity},
		{"fig9", gen.ClassRoad},
	} {
		if !run(c.key) {
			continue
		}
		rows, err := experiments.FigClass(cfg, c.class, 0.4)
		check(err)
		experiments.FprintFigClass(os.Stdout, c.class, rows)
		if *charts {
			experiments.FprintFigClassChart(os.Stdout, c.class, rows)
		}
		fmt.Println()
	}
	if run("sweep") {
		for _, class := range []gen.Class{gen.ClassWeb, gen.ClassRoad} {
			pts, err := experiments.FractionSweep(cfg, class, nil)
			check(err)
			experiments.FprintSweep(os.Stdout, class, pts)
			fmt.Println()
		}
	}
	if run("traversal") {
		rows, err := experiments.TraversalBench(cfg, 0.2)
		check(err)
		experiments.FprintTraversal(os.Stdout, 0.2, rows)
		if *travOut != "" {
			check(experiments.WriteTraversalJSON(*travOut, cfg, 0.2, rows))
			fmt.Printf("wrote %s\n", *travOut)
		}
		fmt.Println()
	}
	if run("batching") {
		rows, err := experiments.BatchingBench(cfg, 0.2)
		check(err)
		experiments.FprintBatching(os.Stdout, 0.2, rows)
		if *batchOut != "" {
			check(experiments.WriteBatchingJSON(*batchOut, cfg, 0.2, rows))
			fmt.Printf("wrote %s\n", *batchOut)
		}
		fmt.Println()
	}
	if run("frontier") {
		rows, err := experiments.FrontierBench(cfg)
		check(err)
		experiments.FprintFrontier(os.Stdout, rows)
		if *frontOut != "" {
			check(experiments.WriteFrontierJSON(*frontOut, cfg, rows))
			fmt.Printf("wrote %s\n", *frontOut)
		}
		fmt.Println()
	}
	if run("sketch") {
		rows, err := experiments.SketchBench(cfg)
		check(err)
		experiments.FprintSketch(os.Stdout, rows)
		if *sketchOut != "" {
			check(experiments.WriteSketchJSON(*sketchOut, cfg, rows))
			fmt.Printf("wrote %s\n", *sketchOut)
		}
		fmt.Println()
	}
	if run("bicc") {
		rows, err := experiments.BiCCBench(cfg)
		check(err)
		experiments.FprintBiCC(os.Stdout, rows)
		if *biccOut != "" {
			check(experiments.WriteBiCCJSON(*biccOut, cfg, rows))
			fmt.Printf("wrote %s\n", *biccOut)
		}
		fmt.Println()
	}
	if run("load") {
		rows, err := experiments.LoadBench(cfg)
		check(err)
		experiments.FprintLoad(os.Stdout, rows)
		if *loadOut != "" {
			check(experiments.WriteLoadJSON(*loadOut, cfg, rows))
			fmt.Printf("wrote %s\n", *loadOut)
		}
		fmt.Println()
	}
	if run("reduction") {
		rows, err := experiments.ReductionBench(cfg)
		check(err)
		experiments.FprintReduction(os.Stdout, rows)
		if *jsonOut != "" {
			check(experiments.WriteReductionJSON(*jsonOut, cfg, rows))
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		fmt.Println()
	}
	if run("ablations") {
		// Beyond the paper: estimator/propagation/fixpoint comparisons.
		rows, err := experiments.Ablations(cfg, 0.2)
		check(err)
		experiments.FprintAblations(os.Stdout, rows)
		fmt.Println()
	}
	fmt.Printf("total time %v\n", time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
