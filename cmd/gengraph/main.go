// Command gengraph writes the synthetic dataset stand-ins (or any single
// generator output) to SNAP edge-list files, so they can be fed back to
// cmd/brics or external tools.
//
// Usage:
//
//	gengraph -out data/                  # all 12 Table I stand-ins
//	gengraph -dataset usroads -out -     # one dataset to stdout
//	gengraph -class road -n 50000 -seed 7 -out road.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
	repro_io "repro/internal/io"
)

func main() {
	var (
		out     = flag.String("out", "", "output directory (all datasets) or file/'-' (single graph)")
		dataset = flag.String("dataset", "", "write a single Table I stand-in by name")
		class   = flag.String("class", "", "write a single generator output: web|social|community|road")
		n       = flag.Int("n", 10000, "node count for -class")
		seed    = flag.Int64("seed", 1, "generator seed")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	switch {
	case *class != "":
		var g *graph.Graph
		switch strings.ToLower(*class) {
		case "web":
			g = gen.Web(*n, *seed)
		case "social":
			g = gen.Social(*n, *seed)
		case "community":
			g = gen.Community(*n, *seed)
		case "road":
			g = gen.Road(*n, *seed)
		default:
			fatal(fmt.Errorf("unknown class %q", *class))
		}
		writeOne(*out, g)
	case *dataset != "":
		ds, ok := gen.ByName(*dataset, *scale)
		if !ok {
			fatal(fmt.Errorf("unknown dataset %q", *dataset))
		}
		writeOne(*out, ds.Build())
	default:
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, ds := range gen.Datasets(*scale) {
			g := ds.Build()
			name := strings.TrimSuffix(ds.Name, " (sim)") + ".txt"
			path := filepath.Join(*out, name)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := repro_io.WriteEdgeList(f, g); err != nil {
				fatal(err)
			}
			_ = f.Close()
			fmt.Printf("%-28s %8d nodes %9d edges -> %s\n", ds.Name, g.NumNodes(), g.NumEdges(), path)
		}
	}
}

func writeOne(out string, g *graph.Graph) {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := repro_io.WriteEdgeList(w, g); err != nil {
		fatal(err)
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d nodes, %d edges to %s\n", g.NumNodes(), g.NumEdges(), out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
