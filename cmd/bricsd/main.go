// Command bricsd serves farness/closeness centrality over HTTP: estimates
// (cached per option set, deduplicated across identical concurrent
// requests), verified top-k queries, and exact dynamic edge updates. See
// internal/server for the endpoint reference and robustness model.
//
//	bricsd -input graph.txt -addr :8080
//	bricsd -dataset usroads -inflight 2 -timeout 10s
//
//	curl localhost:8080/v1/farness/42?fraction=0.2
//	curl -X POST localhost:8080/v1/estimate?timeout=5s -d '{"techniques":"BRIC","fraction":0.2}'
//	curl localhost:8080/v1/topk?k=10
//	curl -X POST localhost:8080/v1/edges -d '{"u":1,"v":2}'
//	curl -X POST 'localhost:8080/v1/estimate?timeout=2s&degrade=accept' -d '{}'
//	curl localhost:8080/v1/status
//
// On SIGINT/SIGTERM the daemon drains gracefully: /readyz flips to 503 so
// load balancers stop routing, in-flight requests get -drain to finish, and
// whatever is still running is then canceled through the estimation stack's
// cooperative cancellation before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	repro_io "repro/internal/io"
	"repro/internal/server"
)

func main() {
	var (
		input      = flag.String("input", "", "input graph file (SNAP edge list or .mtx, optionally .gz)")
		dataset    = flag.String("dataset", "", "synthetic dataset name instead of -input")
		scale      = flag.Float64("scale", 1.0, "synthetic dataset scale factor")
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker goroutines per estimation run (0 = GOMAXPROCS)")
		inflight   = flag.Int("inflight", 4, "max simultaneous estimation runs; excess requests get 429")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request estimation deadline (override per request with ?timeout=)")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested ?timeout= deadlines")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period for in-flight requests")
		softMargin = flag.Duration("soft-margin", 500*time.Millisecond, "answer degraded requests this long before their hard deadline, from the freshest progress snapshot")
		degrade    = flag.Bool("degrade", false, "serve partial results on deadline by default (per-request override with ?degrade=accept|reject)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *input != "":
		g, err = repro_io.ReadFile(*input)
	case *dataset != "":
		ds, ok := gen.ByName(*dataset, *scale)
		if !ok {
			err = fmt.Errorf("unknown dataset %q", *dataset)
		} else {
			g = ds.Build()
		}
	default:
		err = fmt.Errorf("one of -input or -dataset is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bricsd:", err)
		os.Exit(1)
	}
	if !graph.IsConnected(g) {
		log.Printf("input disconnected; adding bridge edges")
		g = graph.Connect(g)
	}

	log.Printf("building exact index over %d nodes, %d edges ...", g.NumNodes(), g.NumEdges())
	start := time.Now()
	s, err := server.NewWithConfig(g, server.Config{
		Workers:          *workers,
		MaxInflight:      *inflight,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		SoftMargin:       *softMargin,
		DegradeByDefault: *degrade,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bricsd:", err)
		os.Exit(1)
	}
	log.Printf("index ready in %v; listening on %s", time.Since(start).Round(time.Millisecond), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// Responses stream after estimation completes; allow the longest
		// permitted run plus margin before the connection is cut.
		WriteTimeout: *maxTimeout + 15*time.Second,
		IdleTimeout:  60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutdown signal received; draining for up to %v", *drain)
	s.SetReady(false) // /readyz → 503: stop new traffic at the balancer
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v; aborting in-flight estimations", err)
	}
	s.Close() // cancel whatever outlived the grace period
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("shutdown complete")
}
