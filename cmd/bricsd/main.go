// Command bricsd serves farness/closeness centrality over HTTP: estimates
// (cached per option set), verified top-k queries, and exact dynamic edge
// updates. See internal/server for the endpoint reference.
//
//	bricsd -input graph.txt -addr :8080
//	bricsd -dataset usroads
//
//	curl localhost:8080/v1/farness/42?fraction=0.2
//	curl -X POST localhost:8080/v1/estimate -d '{"techniques":"BRIC","fraction":0.2}'
//	curl localhost:8080/v1/topk?k=10
//	curl -X POST localhost:8080/v1/edges -d '{"u":1,"v":2}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	repro_io "repro/internal/io"
	"repro/internal/server"
)

func main() {
	var (
		input   = flag.String("input", "", "input graph file (SNAP edge list or .mtx, optionally .gz)")
		dataset = flag.String("dataset", "", "synthetic dataset name instead of -input")
		scale   = flag.Float64("scale", 1.0, "synthetic dataset scale factor")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *input != "":
		g, err = repro_io.ReadFile(*input)
	case *dataset != "":
		ds, ok := gen.ByName(*dataset, *scale)
		if !ok {
			err = fmt.Errorf("unknown dataset %q", *dataset)
		} else {
			g = ds.Build()
		}
	default:
		err = fmt.Errorf("one of -input or -dataset is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bricsd:", err)
		os.Exit(1)
	}
	if !graph.IsConnected(g) {
		log.Printf("input disconnected; adding bridge edges")
		g = graph.Connect(g)
	}

	log.Printf("building exact index over %d nodes, %d edges ...", g.NumNodes(), g.NumEdges())
	start := time.Now()
	s, err := server.New(g, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bricsd:", err)
		os.Exit(1)
	}
	log.Printf("index ready in %v; listening on %s", time.Since(start).Round(time.Millisecond), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
