// Command bricsd serves farness/closeness centrality over HTTP: estimates
// (cached per option set, deduplicated across identical concurrent
// requests), verified top-k queries, and exact dynamic edge updates. See
// internal/server for the endpoint reference and robustness model.
//
// Single-graph mode serves one graph on the classic routes:
//
//	bricsd -input graph.txt -addr :8080
//	bricsd -input graph.bricsbin              (mmap zero-copy load)
//	bricsd -dataset usroads -inflight 2 -timeout 10s
//
// Registry mode serves a directory of .bricsbin artifacts, each lazily
// mmap-loaded on first request and evicted LRU under a resident budget; the
// classic routes alias the default graph:
//
//	bricsd -graphs ./artifacts -max-resident 2GiB -default web-Stanford
//
//	curl localhost:8080/v1/farness/42?fraction=0.2
//	curl localhost:8080/graphs                      # registry: load states
//	curl localhost:8080/graphs/usroads/v1/topk?k=10
//	curl -X POST localhost:8080/v1/estimate?timeout=5s -d '{"techniques":"BRIC","fraction":0.2}'
//	curl -X POST localhost:8080/v1/edges -d '{"u":1,"v":2}'
//	curl localhost:8080/v1/status                   # + registry block in registry mode
//
// On SIGINT/SIGTERM the daemon drains gracefully: /readyz flips to 503 so
// load balancers stop routing, in-flight requests get -drain to finish, and
// whatever is still running is then canceled through the estimation stack's
// cooperative cancellation before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bincsr"
	"repro/internal/gen"
	"repro/internal/graph"
	repro_io "repro/internal/io"
	"repro/internal/server"
)

func main() {
	var (
		input      = flag.String("input", "", "input graph file (edge list, .mtx, .gr or .bricsbin, optionally .gz)")
		dataset    = flag.String("dataset", "", "synthetic dataset name instead of -input")
		scale      = flag.Float64("scale", 1.0, "synthetic dataset scale factor")
		graphsDir  = flag.String("graphs", "", "registry mode: serve every .bricsbin artifact in this directory under /graphs/{id}/")
		maxRes     = flag.String("max-resident", "", "registry mode: resident-byte budget for loaded artifacts, e.g. 512MiB (empty = unlimited); idle graphs are evicted LRU")
		defGraph   = flag.String("default", "", "registry mode: graph id behind the legacy single-graph routes (default: first id)")
		verifyMode = flag.String("verify-artifacts", "fast", "registry artifact verification at load: fast (header+offsets) or full (all checksums + structure scan)")
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker goroutines per estimation run (0 = GOMAXPROCS)")
		inflight   = flag.Int("inflight", 4, "max simultaneous estimation runs; excess requests get 429")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request estimation deadline (override per request with ?timeout=)")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested ?timeout= deadlines")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period for in-flight requests")
		softMargin = flag.Duration("soft-margin", 500*time.Millisecond, "answer degraded requests this long before their hard deadline, from the freshest progress snapshot")
		degrade    = flag.Bool("degrade", false, "serve partial results on deadline by default (per-request override with ?degrade=accept|reject)")
	)
	flag.Parse()

	cfg := server.Config{
		Workers:          *workers,
		MaxInflight:      *inflight,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		SoftMargin:       *softMargin,
		DegradeByDefault: *degrade,
	}

	var handler http.Handler
	var setReady func(bool)
	var closeAll func()

	if *graphsDir != "" {
		budget, err := parseBytes(*maxRes)
		if err != nil {
			fatal(err)
		}
		verify := bincsr.VerifyFast
		switch *verifyMode {
		case "fast":
		case "full":
			verify = bincsr.VerifyFull
		default:
			fatal(fmt.Errorf("bad -verify-artifacts %q (want fast or full)", *verifyMode))
		}
		paths, err := server.DiscoverArtifacts(*graphsDir)
		if err != nil {
			fatal(err)
		}
		reg, err := server.NewRegistry(paths, server.RegistryConfig{
			Server:           cfg,
			MaxResidentBytes: budget,
			Verify:           verify,
			DefaultGraph:     *defGraph,
		})
		if err != nil {
			fatal(err)
		}
		log.Printf("registry: %d artifacts in %s, default %q, budget %s; listening on %s",
			len(paths), *graphsDir, reg.DefaultGraph(), orUnlimited(budget), *addr)
		handler = reg
		setReady = func(bool) {} // per-graph servers manage their own readiness
		closeAll = reg.Close
	} else {
		g, name, err := loadSingle(*input, *dataset, *scale, cfg.Workers)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		s, err := server.NewWithConfig(g.g, serverConfigFor(cfg, g))
		if err != nil {
			fatal(err)
		}
		log.Printf("graph %s ready in %v (%d nodes, %d edges, %s); listening on %s",
			name, time.Since(start).Round(time.Millisecond),
			g.g.NumNodes(), g.g.NumEdges(), g.source, *addr)
		handler = s
		setReady = s.SetReady
		closeAll = func() {
			s.Close()
			if g.mapped != nil {
				s.WaitRuns()
				_ = g.mapped.Close()
			}
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// Responses stream after estimation completes; allow the longest
		// permitted run plus margin before the connection is cut.
		WriteTimeout: *maxTimeout + 15*time.Second,
		IdleTimeout:  60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutdown signal received; draining for up to %v", *drain)
	setReady(false) // /readyz → 503: stop new traffic at the balancer
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v; aborting in-flight estimations", err)
	}
	closeAll() // cancel whatever outlived the grace period; drain runs; unmap
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("shutdown complete")
}

// loaded is a single-mode graph plus its provenance: a mapped artifact must
// outlive the server and be unmapped after run draining.
type loaded struct {
	g         *graph.Graph
	mapped    *bincsr.Mapped
	connected bool // proven at load time (artifact flag), skip the rescan
	source    string
}

// loadSingle resolves the single-graph-mode input. A .bricsbin input goes
// through the mmap zero-copy path — connectivity comes from the artifact's
// flag when present; everything else takes the text parsers and is bridged
// if disconnected, exactly as before.
func loadSingle(input, dataset string, scale float64, workers int) (loaded, string, error) {
	switch {
	case strings.HasSuffix(input, ".bricsbin"):
		m, err := bincsr.OpenMapped(input, bincsr.Options{Workers: workers})
		if err != nil {
			return loaded{}, "", err
		}
		src := "heap copy"
		if m.Mapped() {
			src = "mmap zero-copy"
		}
		return loaded{g: m.G, mapped: m, connected: m.Header.Connected(), source: src}, input, nil
	case input != "":
		g, err := repro_io.ReadAny(input)
		if err != nil {
			return loaded{}, "", err
		}
		return connectIfNeeded(g), input, nil
	case dataset != "":
		ds, ok := gen.ByName(dataset, scale)
		if !ok {
			return loaded{}, "", fmt.Errorf("unknown dataset %q", dataset)
		}
		return connectIfNeeded(ds.Build()), ds.Name, nil
	default:
		return loaded{}, "", fmt.Errorf("one of -input, -dataset or -graphs is required")
	}
}

func connectIfNeeded(g *graph.Graph) loaded {
	if !graph.IsConnected(g) {
		log.Printf("input disconnected; adding bridge edges")
		g = graph.Connect(g)
	}
	return loaded{g: g, connected: true, source: "parsed"}
}

func serverConfigFor(cfg server.Config, l loaded) server.Config {
	cfg.AssumeConnected = l.connected
	return cfg
}

// parseBytes parses a human byte size: plain bytes, or a KB/MB/GB/TB,
// KiB/MiB/GiB/TiB suffix. Empty means unlimited (0).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	units := []struct {
		suffix string
		mult   int64
	}{
		{"TiB", 1 << 40}, {"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"TB", 1e12}, {"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3}, {"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimSuffix(s, u.suffix)), 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("bad size %q", s)
			}
			return int64(v * float64(u.mult)), nil
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q (want bytes or a KiB/MiB/GiB suffix)", s)
	}
	return v, nil
}

func orUnlimited(b int64) string {
	if b <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d bytes", b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bricsd:", err)
	os.Exit(1)
}
