// Command brics estimates (or exactly computes) the farness centrality of
// every node of a graph.
//
// Usage:
//
//	brics -input graph.txt[.gz] [-techniques BRIC] [-fraction 0.2]
//	      [-exact] [-workers N] [-seed S] [-output out.csv] [-top K]
//	brics convert -input graph.txt[.gz] [-output graph.bricsbin]
//	      [-connect] [-verify] [-workers N]
//
// The input is a SNAP edge list, Matrix Market, DIMACS or .bricsbin file;
// disconnected inputs are connected with bridge edges (the paper's
// preprocessing). Without -input, a synthetic dataset can be selected with
// -dataset (see cmd/experiments -list).
//
// The convert subcommand parses the input once and writes a binary CSR
// artifact (.bricsbin) that bricsd and every other tool load back at
// page-cache speed — mmap on linux — instead of re-parsing text.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/bincsr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	repro_io "repro/internal/io"
	"repro/internal/topk"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "convert" {
		convertMain(os.Args[2:])
		return
	}
	var (
		input      = flag.String("input", "", "input graph file (SNAP edge list or .mtx, optionally .gz)")
		dataset    = flag.String("dataset", "", "synthetic dataset name instead of -input (e.g. 'osm-luxembourg')")
		scale      = flag.Float64("scale", 1.0, "synthetic dataset scale factor")
		techniques = flag.String("techniques", "BRIC", "enabled reductions: any of B,R,I,C (S is implied)")
		fraction   = flag.Float64("fraction", 0.2, "sampling fraction in (0,1]")
		exact      = flag.Bool("exact", false, "compute exact farness (one BFS per node) instead of estimating")
		baseline   = flag.Bool("random", false, "run the random-sampling baseline instead of BRICS")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "sampling seed")
		output     = flag.String("output", "", "write node,farness,exact CSV here ('-' = stdout)")
		top        = flag.Int("top", 10, "print the K most central (lowest farness) nodes")
		topkExact  = flag.Int("topk-exact", 0, "verified top-K mode: print the exact K most central nodes via estimate-then-verify and exit")
		adaptive   = flag.Bool("adaptive", false, "escalate the sampling fraction until estimates stabilise")
	)
	flag.Parse()

	g, name, err := loadInput(*input, *dataset, *scale)
	if err != nil {
		fatal(err)
	}
	if !graph.IsConnected(g) {
		fmt.Fprintf(os.Stderr, "input disconnected; adding bridge edges (paper preprocessing)\n")
		g = graph.Connect(g)
	}
	fmt.Printf("graph %s: %d nodes, %d edges\n", name, g.NumNodes(), g.NumEdges())

	if *topkExact > 0 {
		tech, err := parseTechniques(*techniques)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		res, err := topk.Closeness(g, *topkExact, topk.Options{
			Estimate: core.Options{
				Techniques:     tech,
				SampleFraction: *fraction,
				Workers:        *workers,
				Seed:           *seed,
			},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("verified top-%d in %v (%d exact traversals, certain=%v):\n",
			*topkExact, time.Since(start).Round(time.Millisecond), res.Verified, res.Certain)
		for i, v := range res.Nodes {
			fmt.Printf("  %2d. node %8d  farness %14.1f\n", i+1, v, res.Farness[i])
		}
		return
	}

	var farness []float64
	var exactFlags []bool
	start := time.Now()
	switch {
	case *exact:
		farness = core.ExactFarness(g, *workers)
		exactFlags = make([]bool, len(farness))
		for i := range exactFlags {
			exactFlags[i] = true
		}
		fmt.Printf("exact farness in %v\n", time.Since(start).Round(time.Millisecond))
	case *baseline:
		res := core.RandomSampling(g, *fraction, *workers, *seed)
		farness, exactFlags = res.Farness, res.Exact
		fmt.Printf("random sampling (%d sources) in %v\n", res.Stats.Samples, time.Since(start).Round(time.Millisecond))
	default:
		tech, err := parseTechniques(*techniques)
		if err != nil {
			fatal(err)
		}
		var res *core.Result
		if *adaptive {
			ares, aerr := core.EstimateAdaptive(g, core.AdaptiveOptions{
				Base: core.Options{Techniques: tech, Workers: *workers, Seed: *seed},
			})
			if aerr != nil {
				fatal(aerr)
			}
			fmt.Printf("adaptive rounds (fractions): %v  drifts: %v\n", ares.Rounds, ares.Drifts)
			res = &ares.Result
		} else {
			res, err = core.Estimate(g, core.Options{
				Techniques:     tech,
				SampleFraction: *fraction,
				Workers:        *workers,
				Seed:           *seed,
			})
			if err != nil {
				fatal(err)
			}
		}
		farness, exactFlags = res.Farness, res.Exact
		s := res.Stats
		fmt.Printf("%s estimate in %v: reduced %d->%d nodes (%d twins, %d chain, %d redundant), %d blocks (max %d), %d samples\n",
			tech, time.Since(start).Round(time.Millisecond),
			g.NumNodes(), s.ReducedNodes,
			s.Reduction.IdenticalNodes, s.Reduction.ChainNodes, s.Reduction.RedundantNodes,
			s.Blocks.Count, s.Blocks.Max, s.Samples)
	}

	printTop(farness, *top)

	if *output != "" {
		w := os.Stdout
		if *output != "-" {
			f, err := os.Create(*output)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := repro_io.WriteFarnessCSV(w, farness, exactFlags); err != nil {
			fatal(err)
		}
		if *output != "-" {
			fmt.Printf("wrote %s\n", *output)
		}
	}
}

// convertMain implements `brics convert`: parse once, write a .bricsbin
// artifact. Connectivity is resolved at convert time — either the input is
// already connected or -connect (default) bridges it — so the artifact
// carries FlagConnected and servers loading it skip the O(n+m) scan.
func convertMain(args []string) {
	fs := flag.NewFlagSet("brics convert", flag.ExitOnError)
	var (
		input   = fs.String("input", "", "input graph file (edge list, .mtx, .gr, .bricsbin, optionally .gz)")
		dataset = fs.String("dataset", "", "synthetic dataset name instead of -input")
		scale   = fs.Float64("scale", 1.0, "synthetic dataset scale factor")
		output  = fs.String("output", "", "output artifact path (default: input with a .bricsbin extension)")
		connect = fs.Bool("connect", true, "bridge a disconnected input (paper preprocessing); the artifact then records connectivity")
		verify  = fs.Bool("verify", true, "re-read the artifact with full checksum and structure verification after writing")
		workers = fs.Int("workers", 0, "verification scan width (0 = GOMAXPROCS)")
	)
	_ = fs.Parse(args)

	g, name, err := loadInput(*input, *dataset, *scale)
	if err != nil {
		fatal(err)
	}
	out := *output
	if out == "" {
		if *input == "" {
			fatal(fmt.Errorf("-output is required with -dataset"))
		}
		base := strings.TrimSuffix(*input, ".gz")
		if i := strings.LastIndexByte(base, '.'); i > strings.LastIndexByte(base, '/') {
			base = base[:i]
		}
		out = base + ".bricsbin"
	}

	var flags bincsr.Flags
	switch {
	case graph.IsConnected(g):
		flags |= bincsr.FlagConnected
	case *connect:
		fmt.Fprintln(os.Stderr, "input disconnected; adding bridge edges (paper preprocessing)")
		g = graph.Connect(g)
		flags |= bincsr.FlagConnected
	}

	start := time.Now()
	if err := bincsr.WriteFile(out, g, flags); err != nil {
		fatal(err)
	}
	wrote := time.Since(start)
	st, err := os.Stat(out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("converted %s -> %s: %d nodes, %d edges, %d bytes, connected=%v, in %v\n",
		name, out, g.NumNodes(), g.NumEdges(), st.Size(),
		flags&bincsr.FlagConnected != 0, wrote.Round(time.Millisecond))

	if *verify {
		start = time.Now()
		f, err := os.Open(out)
		if err != nil {
			fatal(err)
		}
		art, err := bincsr.ReadWorkers(bufio.NewReaderSize(f, 1<<20), *workers)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("verify: %w", err))
		}
		if art.G.NumNodes() != g.NumNodes() || art.G.NumEdges() != g.NumEdges() {
			fatal(fmt.Errorf("verify: artifact shape (%d,%d) differs from source (%d,%d)",
				art.G.NumNodes(), art.G.NumEdges(), g.NumNodes(), g.NumEdges()))
		}
		fmt.Printf("verified (checksums + structure) in %v\n", time.Since(start).Round(time.Millisecond))
	}
}

func loadInput(input, dataset string, scale float64) (*graph.Graph, string, error) {
	switch {
	case input != "":
		g, err := repro_io.ReadAny(input)
		return g, input, err
	case dataset != "":
		ds, ok := gen.ByName(dataset, scale)
		if !ok {
			return nil, "", fmt.Errorf("unknown dataset %q (see cmd/experiments -list)", dataset)
		}
		return ds.Build(), ds.Name, nil
	default:
		return nil, "", fmt.Errorf("one of -input or -dataset is required")
	}
}

func parseTechniques(s string) (core.Technique, error) {
	return core.ParseTechniques(s)
}

func printTop(farness []float64, k int) {
	if k <= 0 || len(farness) == 0 {
		return
	}
	if k > len(farness) {
		k = len(farness)
	}
	ord := make([]int, len(farness))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(i, j int) bool { return farness[ord[i]] < farness[ord[j]] })
	fmt.Printf("top %d most central nodes (lowest farness):\n", k)
	for _, v := range ord[:k] {
		fmt.Printf("  node %8d  farness %14.1f  closeness %.3e\n", v, farness[v], 1/farness[v])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brics:", err)
	os.Exit(1)
}
