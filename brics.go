// Package brics is the public API of the BRICS farness-centrality library,
// a from-scratch Go reproduction of "BRICS – Efficient Techniques for
// Estimating the Farness-Centrality in Parallel" (Regunta, Tondomker,
// Kothapalli; IPDPS workshops 2019).
//
// The farness of a node v in a connected undirected graph is the sum of
// shortest-path distances from v to every other node (its inverse is the
// closeness centrality). Exact computation needs one BFS per node; BRICS
// estimates all n values from k ≪ n traversals after shrinking the graph
// with four structure-exploiting reductions:
//
//	B — decompose into Biconnected components and aggregate across the
//	    block cut-vertex tree,
//	R — remove Redundant 3/4-degree nodes,
//	I — remove Identical (twin) nodes,
//	C — contract Chains of degree-≤2 nodes,
//	S — Sample traversal sources inside each component.
//
// Quick start:
//
//	g, err := brics.LoadGraph("soc-Slashdot0811.txt.gz")
//	g = brics.Connect(g)
//	res, err := brics.Estimate(g, brics.Options{
//		Techniques:     brics.TechCumulative,
//		SampleFraction: 0.2,
//	})
//	fmt.Println(res.Farness[0], res.Exact[0])
//
// See the examples/ directory for runnable scenarios and DESIGN.md for the
// architecture and the paper-experiment index.
package brics

import (
	"context"
	"io"
	"time"

	"repro/internal/betweenness"
	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	repro_io "repro/internal/io"
	"repro/internal/sketch"
	"repro/internal/topk"
)

// Graph is a simple undirected graph in CSR form (see Builder and
// LoadGraph for construction).
type Graph = graph.Graph

// NodeID identifies a node: dense int32 values in [0, NumNodes()).
type NodeID = graph.NodeID

// Builder accumulates edges and produces a normalised Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewGrowingBuilder returns a Builder that grows its node range with the
// edges it sees.
func NewGrowingBuilder() *Builder { return graph.NewGrowingBuilder() }

// FromEdges builds a graph with n nodes from an edge list; it panics on
// out-of-range endpoints (intended for literals and tests).
func FromEdges(n int, edges [][2]NodeID) *Graph { return graph.FromEdges(n, edges) }

// Connect adds the minimum number of edges needed to make g connected —
// the paper's preprocessing for disconnected inputs. Connected graphs are
// returned unchanged.
func Connect(g *Graph) *Graph { return graph.Connect(g) }

// IsConnected reports whether g is connected.
func IsConnected(g *Graph) bool { return graph.IsConnected(g) }

// LoadGraph reads a graph file (SNAP edge list or Matrix Market .mtx,
// optionally .gz) and normalises it to a simple undirected graph.
func LoadGraph(path string) (*Graph, error) { return repro_io.ReadFile(path) }

// ReadEdgeList parses a SNAP-style edge list from r.
func ReadEdgeList(r io.Reader) (*Graph, error) { return repro_io.ReadEdgeList(r) }

// WriteEdgeList writes g as an edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return repro_io.WriteEdgeList(w, g) }

// Technique selects BRICS optimisations (bitmask).
type Technique = core.Technique

// Technique flags; combine with |. TechCumulative is the paper's full
// configuration.
const (
	TechIdentical  = core.TechIdentical
	TechChains     = core.TechChains
	TechRedundant  = core.TechRedundant
	TechBiCC       = core.TechBiCC
	TechCR         = core.TechCR
	TechICR        = core.TechICR
	TechCumulative = core.TechCumulative
)

// EstimatorKind selects the extrapolation rule for unsampled nodes.
type EstimatorKind = core.EstimatorKind

// Estimator kinds.
const (
	// EstimatorWeighted (default) calibrates the extrapolation with the
	// sample rows' distance offsets.
	EstimatorWeighted = core.EstimatorWeighted
	// EstimatorPaper is the literal (population−1)/k scaling.
	EstimatorPaper = core.EstimatorPaper
)

// TraversalMode selects the traversal engine used for sampled sources.
type TraversalMode = core.TraversalMode

// Traversal modes. TraversalAuto batches sources into 64-wide bit-parallel
// multi-source sweeps whenever at least 8 of them share a component or
// biconnected block, switches to the frontier-parallel edge-map engine when
// a unit carries fewer sources than half the workers (sequential sources,
// each traversal's levels split across the pool — the only engine that
// scales a *single* traversal), and otherwise runs the direction-optimising
// per-source kernel. TraversalPerSource (plain top-down), TraversalBatched,
// TraversalHybrid (direction-optimising, never batched) and
// TraversalFrontier (edge-map, never batched) force one engine. All engines
// produce identical farness values for the same seed at every worker count —
// the choice only changes the wall-clock.
const (
	TraversalAuto      = core.TraversalAuto
	TraversalPerSource = core.TraversalPerSource
	TraversalBatched   = core.TraversalBatched
	TraversalHybrid    = core.TraversalHybrid
	TraversalFrontier  = core.TraversalFrontier
)

// BatchingMode selects how sampled sources are packed into the 64-wide
// bit-parallel batches of the batched traversal engine (see TraversalMode).
type BatchingMode = core.BatchingMode

// Batching modes. BatchingAuto (default) reorders the sampled sources by
// graph proximity — a BFS/Cuthill–McKee position pass over the traversal
// graph — whenever more than one batch runs, so each 64-wide batch covers
// one neighbourhood and its lane frontiers merge after a few hops;
// BatchingArbitrary keeps sample-draw order (the pre-clustering behaviour)
// and BatchingClustered forces the proximity pass. The sample set is never
// re-drawn — batching only permutes source order — so farness output is
// bit-identical across modes at every worker count; only the wall-clock
// changes.
const (
	BatchingAuto      = core.BatchingAuto
	BatchingArbitrary = core.BatchingArbitrary
	BatchingClustered = core.BatchingClustered
)

// ParseBatchingMode converts a mode name ("auto", "arbitrary", "clustered"
// and a few aliases) into a BatchingMode.
func ParseBatchingMode(s string) (BatchingMode, error) { return core.ParseBatchingMode(s) }

// RelabelMode selects a cache-aware node reordering applied to the reduced
// graph (and each biconnected block) before the sampled traversals run: ids
// are permuted so hot adjacency rows pack together, distance rows are mapped
// back afterwards. A pure memory-layout knob — results are bit-identical to
// RelabelNone at every worker count.
type RelabelMode = graph.RelabelMode

// Relabel modes. RelabelDegree orders nodes by descending degree (hub
// packing, helps power-law graphs); RelabelBFS uses a Cuthill–McKee-style
// breadth-first order (bandwidth reduction, helps meshes and road networks).
const (
	RelabelNone   = graph.RelabelNone
	RelabelDegree = graph.RelabelDegree
	RelabelBFS    = graph.RelabelBFS
)

// ParseRelabelMode converts a mode name ("none", "degree", "bfs" and a few
// aliases) into a RelabelMode.
func ParseRelabelMode(s string) (RelabelMode, error) { return graph.ParseRelabelMode(s) }

// ParseTraversalMode converts an engine name ("auto", "per-source",
// "batched", "hybrid", "frontier") into a TraversalMode.
func ParseTraversalMode(s string) (TraversalMode, error) { return core.ParseTraversalMode(s) }

// Options configures Estimate; the zero value runs pure sampling at the
// paper's default 20% fraction.
type Options = core.Options

// Result of an estimation run: per-node farness, exactness flags and run
// statistics.
type Result = core.Result

// RunStats describes what an estimation run did (reductions, blocks,
// samples, timings).
type RunStats = core.RunStats

// Estimate runs the BRICS estimator on a connected graph. Options.Workers
// is the single parallelism knob for the whole run: the reduction pipeline
// (twin/chain/redundant detection, biconnected decomposition, graph
// rebuilds) and the traversals all fan out across it, and every worker
// count produces identical results.
func Estimate(g *Graph, opts Options) (*Result, error) { return core.Estimate(g, opts) }

// ErrCanceled is wrapped by every error returned from a context-aware run
// (EstimateContext and friends) that stopped because its context fired.
// Callers can test the cause with the standard errors package:
//
//	res, err := brics.EstimateContext(ctx, g, opts)
//	if errors.Is(err, brics.ErrCanceled) {
//		// the run was abandoned; res is nil and no partial values leak
//	}
//
// The context's own cause is wrapped too, so errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) also work.
var ErrCanceled = core.ErrCanceled

// EstimateContext is Estimate with cooperative cancellation. The run checks
// ctx between pipeline stages (reduction rounds, decomposition, traversal,
// aggregation), between traversal sources, and inside long traversals at
// frontier granularity, so cancellation latency is bounded by a slice of
// one BFS level rather than a whole run. A canceled run returns a nil
// Result and an ErrCanceled-wrapping error; a run whose context never fires
// returns bit-identical output to Estimate with the same options.
func EstimateContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	return core.EstimateContext(ctx, g, opts)
}

// ExactFarness computes exact farness for every node with one parallel
// traversal per node — the ground truth, O(n·m) work.
func ExactFarness(g *Graph, workers int) []float64 { return core.ExactFarness(g, workers) }

// RandomSampling is the baseline estimator (the paper's Algorithm 1):
// uniform sources on the unreduced graph, traversal engine chosen
// automatically.
func RandomSampling(g *Graph, fraction float64, workers int, seed int64) *Result {
	return core.RandomSampling(g, fraction, workers, seed)
}

// RandomSamplingMode is RandomSampling with an explicit traversal engine
// (see TraversalMode); useful for benchmarking the engines against each
// other.
func RandomSamplingMode(g *Graph, fraction float64, workers int, seed int64, mode TraversalMode) *Result {
	return core.RandomSamplingMode(g, fraction, workers, seed, mode)
}

// Distance returns the shortest-path distance between two nodes using
// bidirectional BFS (both endpoints expand level by level, always growing
// the smaller frontier), which visits a small fraction of the nodes a full
// traversal would on small-world graphs. Returns -1 when t is unreachable
// from s. This is the kernel behind the server's /v1/distance endpoint.
func Distance(g *Graph, s, t NodeID) int32 { return bfs.PointToPoint(g, s, t) }

// DistanceContext is Distance with cooperative cancellation, polled at every
// expansion level: when ctx is canceled or its deadline passes, the search
// is abandoned and an ErrCanceled-wrapping error is returned (the distance
// value is then meaningless). The server's /v1/distance handler uses this
// form so client disconnects and ?timeout= budgets cut traversals short;
// Distance stays as the convenience wrapper for callers without a context.
func DistanceContext(ctx context.Context, g *Graph, s, t NodeID) (int32, error) {
	return bfs.PointToPointCtx(ctx, g, s, t)
}

// DistanceSketch is a cluster-BFS distance index: ~k seed clusters (degree-
// picked centers grown to radius r) are swept once each through the 64-lane
// bit-parallel engine, recording per (vertex, cluster) the base distance and
// lane-visit bitmasks. After the one-time build, Bounds(u, v) returns a
// proven [lower, upper] distance bracket — the best triangle-inequality
// bound over the seeds both endpoints reached, refined through bitmask
// intersection — in O(k) word operations with no traversal; Query escapes to
// an exact bidirectional BFS when the bracket is wider than the caller's
// tolerance. This is the index behind the server's /v1/distance
// ?mode=sketch|auto and the top-k candidate filter (TopKOptions.Sketch).
type DistanceSketch = sketch.Sketch

// SketchOptions configures NewDistanceSketch; the zero value selects the
// package defaults (16 clusters, radius 1, GOMAXPROCS workers).
type SketchOptions = sketch.Options

// NewDistanceSketch builds a DistanceSketch over a graph. The build costs
// about one multi-source sweep per cluster and is bit-identical at every
// worker count.
func NewDistanceSketch(g *Graph, opts SketchOptions) *DistanceSketch {
	return sketch.Build(g, opts)
}

// Closeness converts farness values to closeness centralities 1/farness
// (0 where farness is 0).
func Closeness(farness []float64) []float64 {
	out := make([]float64, len(farness))
	for i, f := range farness {
		if f > 0 {
			out[i] = 1 / f
		}
	}
	return out
}

// Generators for the four graph classes of the paper's evaluation
// (synthetic stand-ins; see internal/gen and DESIGN.md).
var (
	// GenerateWeb builds a web-graph-like input (many twins and chains,
	// fragmented biconnected structure).
	GenerateWeb = gen.Web
	// GenerateSocial builds a social-network-like input.
	GenerateSocial = gen.Social
	// GenerateCommunity builds a community-network-like input.
	GenerateCommunity = gen.Community
	// GenerateRoad builds a road-network-like input (chain dominated).
	GenerateRoad = gen.Road
)

// Timed runs fn and returns its duration — a convenience for speedup
// measurements in examples and benchmarks.
func Timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// TopKResult is the result of a verified top-k closeness search.
type TopKResult = topk.Result

// TopKOptions configures TopKCloseness.
type TopKOptions = topk.Options

// TopKCloseness returns the k most central nodes (lowest farness) with
// exact farness values, using a BRICS estimate to order candidates and
// exact traversals to confirm them (estimate-then-verify).
func TopKCloseness(g *Graph, k int, opts TopKOptions) (*TopKResult, error) {
	return topk.Closeness(g, k, opts)
}

// TopKClosenessContext is TopKCloseness with cooperative cancellation (see
// EstimateContext for the semantics).
func TopKClosenessContext(ctx context.Context, g *Graph, k int, opts TopKOptions) (*TopKResult, error) {
	return topk.ClosenessContext(ctx, g, k, opts)
}

// DynamicIndex maintains exact farness values under edge insertions and
// deletions (the paper's "dynamic setting" future work): 2 + |affected|
// traversals per update instead of n.
type DynamicIndex = dynamic.Index

// NewDynamicIndex builds a dynamic farness index over a connected graph.
func NewDynamicIndex(g *Graph, workers int) (*DynamicIndex, error) {
	return dynamic.New(g, workers)
}

// AdaptiveOptions configures EstimateAdaptive.
type AdaptiveOptions = core.AdaptiveOptions

// AdaptiveResult extends Result with the escalation trace.
type AdaptiveResult = core.AdaptiveResult

// EstimateAdaptive escalates the sampling fraction until the estimates
// stabilise, answering "which sampling rate does this graph need?"
// automatically.
func EstimateAdaptive(g *Graph, opts AdaptiveOptions) (*AdaptiveResult, error) {
	return core.EstimateAdaptive(g, opts)
}

// EstimateAdaptiveContext is EstimateAdaptive with cooperative cancellation
// (see EstimateContext for the semantics); ctx is threaded into every
// escalation round.
func EstimateAdaptiveContext(ctx context.Context, g *Graph, opts AdaptiveOptions) (*AdaptiveResult, error) {
	return core.EstimateAdaptiveContext(ctx, g, opts)
}

// Betweenness computes exact betweenness centrality (Brandes) for every
// node — the companion metric the paper's related work targets with the
// same structural toolbox.
func Betweenness(g *Graph, workers int) []float64 {
	return betweenness.Exact(g, workers)
}

// BetweennessSampled estimates betweenness from k random sources
// (Brandes–Pich), scaled to the full-graph convention.
func BetweennessSampled(g *Graph, k, workers int, seed int64) []float64 {
	return betweenness.Sampled(g, k, workers, seed)
}
