# Convenience targets; everything is plain `go` underneath.

.PHONY: build test vet check chaos bench bench-reduction bench-traversal bench-batching bench-frontier bench-sketch bench-bicc bench-load experiments fuzz fuzz-smoke cover

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The CI gate: static checks plus the full test suite under the race
# detector (the batched traversal driver and every estimator fan-out must
# stay race-clean).
check:
	go vet ./...
	go test -race ./...

# Chaos suite: a live server under overload with seeded fault injection
# (stalled flights, crashed traversals, refused mutations, forced drain),
# always under the race detector and a hard timeout so a deadlock fails
# loudly instead of hanging the build.
chaos:
	go test -race -count=1 -run 'TestChaos' -timeout 120s ./internal/server/

# Benchmarks: one per paper table/figure plus kernel/ablation benches.
bench: bench-reduction
	go test -bench=. -benchmem ./...

# Preprocessing-pipeline benchmark: per-stage wall-clock at 1/2/4/GOMAXPROCS
# workers for one dataset per generator family, recorded machine-readably in
# BENCH_reduction.json (see EXPERIMENTS.md for the discussion).
bench-reduction:
	go run ./cmd/experiments -only reduction -json BENCH_reduction.json

# Traversal locality matrix: relabel ordering x traversal engine through the
# full cumulative estimator, one dataset per generator family, recorded
# machine-readably in BENCH_traversal.json (see EXPERIMENTS.md and DESIGN.md
# section 8 for the discussion).
bench-traversal:
	go run ./cmd/experiments -only traversal -traversal-json BENCH_traversal.json

# Source-batching matrix: batching mode (arbitrary vs proximity-clustered) x
# estimator engine under the batched traversal kernel, one dataset per
# generator family, recorded machine-readably in BENCH_batching.json (see
# EXPERIMENTS.md and DESIGN.md section 9 for the discussion).
bench-batching:
	go run ./cmd/experiments -only batching -batching-json BENCH_batching.json

# Frontier scaling study: per-source vs frontier-parallel (edge-map) engine
# across worker counts {1,2,4,8} through one full exact farness run, one
# dataset per generator family, every cell verified bit-identical to the
# sequential baseline, recorded machine-readably in BENCH_frontier.json (see
# EXPERIMENTS.md and DESIGN.md section 10 for the discussion).
bench-frontier:
	go run ./cmd/experiments -only frontier -frontier-json BENCH_frontier.json

# Distance-sketch query study: point-to-point throughput of the three
# /v1/distance answering modes (exact bidirectional BFS vs O(k) sketch bound
# lookup vs auto), plus the sketch's one-time build cost and footprint, one
# dataset per generator family, bounds verified against the exact oracle on
# every benchmark pair, recorded machine-readably in BENCH_sketch.json (see
# EXPERIMENTS.md and DESIGN.md section 11 for the discussion).
bench-sketch:
	go run ./cmd/experiments -only sketch -sketch-json BENCH_sketch.json

# BiCC decomposition scaling study: sequential Hopcroft-Tarjan vs the
# parallel FAST-BCC engine across worker counts {1,2,4,8} on each class's
# reduced graph, every cell verified bit-identical to the sequential
# baseline, recorded machine-readably in BENCH_bicc.json (see EXPERIMENTS.md
# and DESIGN.md section 13 for the discussion).
bench-bicc:
	go run ./cmd/experiments -only bicc -bicc-json BENCH_bicc.json

# Artifact load-path study: time-to-first-query (load + one BFS) of text
# edge-list parse vs buffered binary CSR read vs mmap zero-copy open, with
# the mmap cell split into map+verify and first-traversal (page-fault) cost,
# one dataset per generator family, the CSR verified word-identical across
# paths before timing, recorded machine-readably in BENCH_load.json (see
# EXPERIMENTS.md and DESIGN.md section 14 for the discussion).
bench-load:
	go run ./cmd/experiments -only load -load-json BENCH_load.json

# Regenerate every table and figure of the paper (about 4 CPU-minutes).
experiments:
	go run ./cmd/experiments -charts

fuzz:
	go test ./internal/io -fuzz FuzzReadEdgeList -fuzztime 30s
	go test ./internal/io -fuzz FuzzReadMatrixMarket -fuzztime 30s
	go test ./internal/io -fuzz FuzzReadDIMACS -fuzztime 30s
	go test ./internal/io -fuzz FuzzReadEdgeListTruncated -fuzztime 30s
	go test ./internal/bincsr -fuzz FuzzReadBinCSR -fuzztime 30s
	go test ./internal/bicc -fuzz FuzzDecompose -fuzztime 30s
	go test ./internal/core -fuzz FuzzEstimatePipeline -fuzztime 60s

# Short fuzz smoke for CI: a few seconds per target catches parser panics
# introduced by a loader change (and decomposition-invariant breaks from a
# bicc engine change) without the full fuzz budget.
fuzz-smoke:
	go test ./internal/io -fuzz FuzzReadEdgeList -fuzztime 5s
	go test ./internal/io -fuzz FuzzReadMatrixMarket -fuzztime 5s
	go test ./internal/io -fuzz FuzzReadDIMACS -fuzztime 5s
	go test ./internal/io -fuzz FuzzReadEdgeListTruncated -fuzztime 5s
	go test ./internal/bincsr -fuzz FuzzReadBinCSR -fuzztime 5s
	go test ./internal/bicc -fuzz FuzzDecompose -fuzztime 5s

cover:
	go test -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -5
